#include "netlist/cell_library.hpp"

#include <stdexcept>
#include <unordered_map>

namespace sm::netlist {
namespace {

// One shared name->id map per library instance would be cleaner, but the
// library is tiny (a few dozen types); linear scan keeps the class simple.

}  // namespace

CellLibrary::CellLibrary(int correction_pin_layer) {
  // name, fn, inputs, area, width, cap, res, intrinsic, leakage
  auto std_cell = [&](const std::string& name, LogicFn fn, int ins, double area,
                      double width, double cap, double res, double d0,
                      double leak) {
    CellType t;
    t.name = name;
    t.fn = fn;
    t.cls = CellClass::Standard;
    t.num_inputs = ins;
    t.area_um2 = area;
    t.width_um = width;
    t.input_cap_ff = cap;
    t.drive_res_kohm = res;
    t.intrinsic_delay_ps = d0;
    t.leakage_nw = leak;
    t.pin_layer = 1;
    return add(std::move(t));
  };

  // Values approximate NanGate FreePDK45 typical numbers (area in um^2,
  // caps in fF, drive resistance in kOhm, delay in ps, leakage in nW).
  const CellTypeId inv1 = std_cell("INV_X1", LogicFn::Inv, 1, 0.53, 0.38, 1.6, 14.0, 8.0, 12.0);
  std_cell("INV_X2", LogicFn::Inv, 1, 0.80, 0.57, 3.2, 7.0, 8.0, 20.0);
  buf_[0] = std_cell("BUF_X1", LogicFn::Buf, 1, 0.80, 0.57, 1.5, 13.0, 22.0, 15.0);
  buf_[1] = std_cell("BUF_X2", LogicFn::Buf, 1, 1.06, 0.76, 2.2, 7.0, 24.0, 24.0);
  buf_[2] = std_cell("BUF_X4", LogicFn::Buf, 1, 1.60, 1.14, 4.1, 3.6, 26.0, 42.0);
  buf_[3] = std_cell("BUF_X8", LogicFn::Buf, 1, 2.66, 1.90, 8.0, 1.8, 28.0, 80.0);
  const CellTypeId nand2 = std_cell("NAND2_X1", LogicFn::Nand, 2, 0.80, 0.57, 1.6, 13.0, 12.0, 16.0);
  const CellTypeId nand3 = std_cell("NAND3_X1", LogicFn::Nand, 3, 1.06, 0.76, 1.7, 14.5, 16.0, 20.0);
  const CellTypeId nand4 = std_cell("NAND4_X1", LogicFn::Nand, 4, 1.33, 0.95, 1.8, 16.0, 20.0, 24.0);
  const CellTypeId nor2 = std_cell("NOR2_X1", LogicFn::Nor, 2, 0.80, 0.57, 1.7, 15.0, 14.0, 16.0);
  const CellTypeId nor3 = std_cell("NOR3_X1", LogicFn::Nor, 3, 1.06, 0.76, 1.8, 17.0, 19.0, 20.0);
  const CellTypeId and2 = std_cell("AND2_X1", LogicFn::And, 2, 1.06, 0.76, 1.5, 12.0, 24.0, 20.0);
  const CellTypeId or2 = std_cell("OR2_X1", LogicFn::Or, 2, 1.06, 0.76, 1.5, 12.0, 25.0, 20.0);
  const CellTypeId xor2 = std_cell("XOR2_X1", LogicFn::Xor, 2, 1.60, 1.14, 2.8, 14.0, 32.0, 30.0);
  const CellTypeId xnor2 = std_cell("XNOR2_X1", LogicFn::Xnor, 2, 1.60, 1.14, 2.8, 14.0, 32.0, 30.0);
  const CellTypeId aoi21 = std_cell("AOI21_X1", LogicFn::Aoi21, 3, 1.06, 0.76, 1.7, 15.0, 18.0, 22.0);
  const CellTypeId oai21 = std_cell("OAI21_X1", LogicFn::Oai21, 3, 1.06, 0.76, 1.7, 15.0, 18.0, 22.0);
  const CellTypeId mux2 = std_cell("MUX2_X1", LogicFn::Mux2, 3, 1.86, 1.33, 1.9, 14.0, 36.0, 34.0);
  dff_ = std_cell("DFF_X1", LogicFn::Dff, 1, 4.52, 3.23, 1.6, 10.0, 60.0, 110.0);

  comb_gates_ = {inv1,  nand2, nand3, nand4, nor2, nor3, and2,
                 or2,   xor2,  xnor2, aoi21, oai21, mux2};

  {
    CellType t;
    t.name = "SM_PORT_IN";
    t.fn = LogicFn::Port;
    t.cls = CellClass::PortMarker;
    t.num_inputs = 0;
    t.area_um2 = 0.0;
    t.width_um = 0.0;
    t.input_cap_ff = 0.0;
    t.drive_res_kohm = 5.0;  // pad driver
    t.intrinsic_delay_ps = 0.0;
    t.leakage_nw = 0.0;
    input_port_ = add(std::move(t));
  }
  {
    CellType t;
    t.name = "SM_PORT_OUT";
    t.fn = LogicFn::Port;
    t.cls = CellClass::PortMarker;
    t.num_inputs = 1;
    t.area_um2 = 0.0;
    t.width_um = 0.0;
    t.input_cap_ff = 2.0;  // pad load
    t.intrinsic_delay_ps = 0.0;
    t.leakage_nw = 0.0;
    output_port_ = add(std::move(t));
  }
  {
    // Correction cell (paper Sec. 4): modeled as a 2-input-2-output OR gate;
    // power/timing characteristics leveraged from BUF_X2; pins on a high
    // metal layer; no device-layer footprint, so overlap with standard cells
    // is legal. At the netlist level we only need its electrical numbers —
    // the 2-in/2-out structure lives in sm::core::CorrectionPlan.
    CellType t;
    t.name = "SM_CORR";
    t.fn = LogicFn::Or;
    t.cls = CellClass::Correction;
    t.num_inputs = 2;
    t.area_um2 = 0.0;  // no die-area contribution (paper: zero area overhead)
    t.width_um = 1.4;  // BEOL footprint used by overlap legalization
    t.input_cap_ff = 2.2;       // = BUF_X2
    t.drive_res_kohm = 7.0;     // = BUF_X2
    t.intrinsic_delay_ps = 24.0;
    t.leakage_nw = 24.0;
    t.pin_layer = correction_pin_layer;
    correction_ = add(std::move(t));
  }
  {
    // Naive-lifting cell: same lifting mechanics, no erroneous arc.
    CellType t;
    t.name = "SM_LIFT";
    t.fn = LogicFn::Buf;
    t.cls = CellClass::NaiveLift;
    t.num_inputs = 1;
    t.area_um2 = 0.0;
    t.width_um = 1.0;
    t.input_cap_ff = 2.2;
    t.drive_res_kohm = 7.0;
    t.intrinsic_delay_ps = 24.0;
    t.leakage_nw = 24.0;
    t.pin_layer = correction_pin_layer;
    naive_lift_ = add(std::move(t));
  }
}

CellTypeId CellLibrary::add(CellType t) {
  types_.push_back(std::move(t));
  return static_cast<CellTypeId>(types_.size() - 1);
}

const CellType& CellLibrary::type(CellTypeId id) const {
  if (id >= types_.size())
    throw std::out_of_range("CellLibrary::type: bad id " + std::to_string(id));
  return types_[id];
}

std::optional<CellTypeId> CellLibrary::find(const std::string& name) const {
  for (std::size_t i = 0; i < types_.size(); ++i)
    if (types_[i].name == name) return static_cast<CellTypeId>(i);
  return std::nullopt;
}

CellTypeId CellLibrary::id_of(const std::string& name) const {
  if (auto id = find(name)) return *id;
  throw std::invalid_argument("CellLibrary: unknown cell type '" + name + "'");
}

CellTypeId CellLibrary::buffer(int strength) const {
  switch (strength) {
    case 1: return buf_[0];
    case 2: return buf_[1];
    case 4: return buf_[2];
    case 8: return buf_[3];
    default:
      throw std::invalid_argument("CellLibrary::buffer: strength must be 1/2/4/8");
  }
}

int fn_arity(LogicFn fn, int declared_inputs) {
  switch (fn) {
    case LogicFn::Const0:
    case LogicFn::Const1:
      return 0;
    case LogicFn::Buf:
    case LogicFn::Inv:
    case LogicFn::Dff:
      return 1;
    case LogicFn::Xor:
    case LogicFn::Xnor:
      return 2;
    case LogicFn::Aoi21:
    case LogicFn::Oai21:
    case LogicFn::Mux2:
      return 3;
    case LogicFn::And:
    case LogicFn::Nand:
    case LogicFn::Or:
    case LogicFn::Nor:
      return declared_inputs;  // n-ary
    case LogicFn::Port:
      return declared_inputs;
  }
  return declared_inputs;
}

}  // namespace sm::netlist
