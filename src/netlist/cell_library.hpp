// Standard-cell library model (Nangate-45-like).
//
// Each cell type carries the logic function, pin counts, area, input pin
// capacitance, output drive resistance, intrinsic delay, and leakage. Delay
// through a cell is modeled as intrinsic + drive_res * load_cap (a linear
// delay model — sufficient for relative PPA comparisons, which is all the
// paper's Fig. 6 reports).
//
// Two special cell families exist only at the *layout* level:
//   - correction cells (paper Sec. 4): 2-in/2-out OR-modeled cells with pins
//     in M6/M8, power/timing borrowed from BUFX2;
//   - naive-lifting cells: same lifting mechanics without the erroneous arc.
// They are represented by CellClass so layout code can treat them specially
// (overlap-legal, no device-layer footprint).
#pragma once

#include "netlist/tech.hpp"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace sm::netlist {

/// Boolean function of a cell output, evaluated word-parallel by sm::sim.
enum class LogicFn : std::uint8_t {
  Const0,
  Const1,
  Buf,
  Inv,
  And,
  Nand,
  Or,
  Nor,
  Xor,
  Xnor,
  Aoi21,  ///< !((A & B) | C)
  Oai21,  ///< !((A | B) & C)
  Mux2,   ///< S ? B : A   (inputs: A, B, S)
  Dff,    ///< sequential element; treated as a combinational cut point
  Port,   ///< primary input/output marker
};

/// Layout-level classification.
enum class CellClass : std::uint8_t {
  Standard,    ///< ordinary standard cell, pins in M1
  Correction,  ///< paper's correction cell, pins in M6/M8, overlap-legal
  NaiveLift,   ///< baseline lifting cell, pins in M6/M8, overlap-legal
  PortMarker,  ///< pseudo-cell for chip I/O
};

using CellTypeId = std::uint32_t;
constexpr CellTypeId kInvalidCellType = 0xffffffffU;

struct CellType {
  std::string name;
  LogicFn fn = LogicFn::Buf;
  CellClass cls = CellClass::Standard;
  int num_inputs = 1;
  double area_um2 = 1.0;
  double width_um = 0.8;       ///< footprint width (height is row height)
  double input_cap_ff = 1.0;   ///< per input pin
  double drive_res_kohm = 10.0;
  double intrinsic_delay_ps = 10.0;
  double leakage_nw = 10.0;
  int pin_layer = 1;           ///< metal layer carrying the pins
};

/// Immutable library: the standard Nangate-45-like set plus the paper's
/// custom cells. Lookup by name or id.
class CellLibrary {
 public:
  /// Builds the default library. `correction_pin_layer` configures where the
  /// correction/naive-lift cells expose their pins (M6 for ISCAS-85, M8 for
  /// superblue in the paper).
  explicit CellLibrary(int correction_pin_layer = 6);

  const CellType& type(CellTypeId id) const;
  CellTypeId id_of(const std::string& name) const;  ///< throws if unknown
  std::optional<CellTypeId> find(const std::string& name) const;
  std::size_t size() const { return types_.size(); }

  const MetalStack& metal() const { return stack_; }
  double row_height_um() const { return 1.4; }

  // Frequently used ids, resolved once at construction.
  CellTypeId input_port() const { return input_port_; }
  CellTypeId output_port() const { return output_port_; }
  CellTypeId correction_cell() const { return correction_; }
  CellTypeId naive_lift_cell() const { return naive_lift_; }
  CellTypeId dff() const { return dff_; }

  /// Buffer of a given drive strength (1, 2, 4, 8).
  CellTypeId buffer(int strength) const;

  /// All synthesizable combinational gate ids (for the netlist generators).
  const std::vector<CellTypeId>& combinational_gates() const {
    return comb_gates_;
  }

 private:
  CellTypeId add(CellType t);

  std::vector<CellType> types_;
  MetalStack stack_;
  std::vector<CellTypeId> comb_gates_;
  CellTypeId input_port_ = kInvalidCellType;
  CellTypeId output_port_ = kInvalidCellType;
  CellTypeId correction_ = kInvalidCellType;
  CellTypeId naive_lift_ = kInvalidCellType;
  CellTypeId dff_ = kInvalidCellType;
  CellTypeId buf_[4] = {kInvalidCellType, kInvalidCellType, kInvalidCellType,
                        kInvalidCellType};
};

/// Number of inputs the logic function itself requires (Mux2 = 3, etc.).
int fn_arity(LogicFn fn, int declared_inputs);

}  // namespace sm::netlist
