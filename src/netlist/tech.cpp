#include "netlist/tech.hpp"

#include <cassert>
#include <stdexcept>

namespace sm::netlist {

MetalStack::MetalStack() {
  // Pitch/parasitic progression loosely follows FreePDK45: M1-M3 1x pitch,
  // M4-M6 2x, M7-M8 4x, M9-M10 8x. Wider, thicker wires upstairs mean lower
  // resistance and slightly lower capacitance per micron.
  struct Row { double pitch, cap, res; };
  constexpr Row rows[kNumLayers] = {
      {0.19, 0.22, 3.80},   // M1
      {0.19, 0.22, 3.80},   // M2
      {0.19, 0.22, 3.80},   // M3
      {0.28, 0.20, 1.90},   // M4
      {0.28, 0.20, 1.90},   // M5
      {0.28, 0.20, 1.90},   // M6
      {0.80, 0.18, 0.48},   // M7
      {0.80, 0.18, 0.48},   // M8
      {1.60, 0.16, 0.12},   // M9
      {1.60, 0.16, 0.12},   // M10
  };
  for (int i = 0; i < kNumLayers; ++i) {
    MetalLayer& m = layers_[static_cast<std::size_t>(i)];
    m.index = i + 1;
    m.name = "M" + std::to_string(i + 1);
    // M1 horizontal, M2 vertical, alternating upward.
    m.preferred = (i % 2 == 0) ? Direction::Horizontal : Direction::Vertical;
    m.pitch_um = rows[i].pitch;
    m.cap_ff_per_um = rows[i].cap;
    m.res_ohm_per_um = rows[i].res;
  }
}

const MetalLayer& MetalStack::layer(int index) const {
  if (index < 1 || index > kNumLayers)
    throw std::out_of_range("MetalStack::layer: index " + std::to_string(index));
  return layers_[static_cast<std::size_t>(index - 1)];
}

double MetalStack::via_cap_ff(int lower_layer) const {
  // Vias to coarser layers are physically larger.
  const MetalLayer& m = layer(lower_layer);
  return 0.1 + 0.2 * m.pitch_um;
}

double MetalStack::via_res_ohm(int lower_layer) const {
  const MetalLayer& m = layer(lower_layer);
  return 8.0 / (m.pitch_um / 0.19);
}

}  // namespace sm::netlist
